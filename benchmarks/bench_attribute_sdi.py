"""E12 — attribute-qualified SDI: the attribute extension under load.

Real publish/subscribe workloads (YFilter-style) are dominated by
attribute-qualified subscriptions — ``//item[@id="42"]/price`` — which the
paper's attribute-free fragment cannot express.  This benchmark compiles N
such subscriptions (:func:`repro.workloads.queries.attribute_subscription_workload`,
including reverse steps from attribute nodes that the rewrite driver's
attribute lemmas remove) into one :class:`SubscriptionIndex` and matches an
attribute-heavy item feed in a single pass.

Two properties are pinned per configuration:

* *correctness*: every subscription's streamed node ids equal the DOM
  evaluator's answer on the materialized document (the differential
  acceptance bar of the attribute extension);
* *dispatch*: ``[@a]`` / ``[@a="v"]`` qualifiers and attribute steps are
  decided at StartElement through the dispatch index's attribute buckets, so
  per-event work stays bounded by the expectations an event *can* match.

The smoke test writes an ``attribute_sdi`` section into
``BENCH_multi_query_sdi.json`` so the attribute workload's trajectory is
tracked alongside the attribute-free one.
"""

import time

import pytest

from repro.bench.reporting import (
    MULTI_QUERY_SDI_ARTIFACT,
    Table,
    artifact_path,
    update_bench_artifact,
)
from repro.semantics.evaluator import select_positions
from repro.streaming import SubscriptionIndex
from repro.workloads.queries import attribute_subscription_workload
from repro.xmlmodel.builder import document_events
from repro.xmlmodel.generator import item_feed_document
from repro.xpath.cache import QueryCache
from repro.xpath.parser import parse_xpath

DOCUMENT = item_feed_document(items=60, seed=9)
EVENTS = list(document_events(DOCUMENT))

SCALES = (10, 100, 1000)

ARTIFACT_PATH = artifact_path(MULTI_QUERY_SDI_ARTIFACT)


def _build_index(count):
    queries = attribute_subscription_workload(count, seed=13, item_ids=60)
    index = SubscriptionIndex(cache=QueryCache())
    for position, query in enumerate(queries):
        index.add(query, key=(position, query))
    return index


def _bench_scale(count, report):
    index = _build_index(count)
    start = time.perf_counter()
    matcher = index.matcher()
    result = matcher.process(EVENTS)
    elapsed = time.perf_counter() - start

    # Differential acceptance: streaming == DOM per subscription.
    for row in result:
        _, query = row.key
        expected = select_positions(parse_xpath(query), DOCUMENT)
        assert row.node_ids == expected, (query, row.node_ids, expected)

    stats = matcher.stats
    events = len(EVENTS)
    table = Table(
        f"Attribute-qualified SDI: {count} subscriptions over "
        f"{events} events ({stats.attributes_seen} attribute nodes)",
        ["engine", "expectations", "checked/event", "wall ms", "events/sec"],
    )
    table.add_row("shared index", stats.expectations_created,
                  f"{stats.expectations_checked / events:.2f}",
                  f"{elapsed * 1e3:.2f}", round(events / elapsed))
    report(table.render())
    return {
        "subscriptions": count,
        "events": events,
        "attributes_seen": stats.attributes_seen,
        "events_per_sec": round(events / elapsed),
        "wall_ms": round(elapsed * 1e3, 3),
        "expectations_created": stats.expectations_created,
        "expectations_checked_per_event":
            round(stats.expectations_checked / events, 3),
        "matched_subscriptions":
            sum(1 for row in result if row.matched),
    }


@pytest.mark.parametrize("count", SCALES, ids=[f"subs{n}" for n in SCALES])
def test_attribute_sdi(report, count):
    row = _bench_scale(count, report)
    assert row["matched_subscriptions"] > 0


def test_attribute_sdi_smoke(report):
    """Fast CI smoke: differential correctness at every scale, plus the
    ``attribute_sdi`` section of the trajectory artifact."""
    rows = [_bench_scale(count, report) for count in SCALES]
    update_bench_artifact(ARTIFACT_PATH, "attribute_sdi", {
        "document_events": len(EVENTS),
        "scales": rows,
    })
