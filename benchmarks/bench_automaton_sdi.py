"""E13 — lazy-DFA structural dispatch vs the expectation engine.

PR 2's tag-indexed dispatch made per-event cost proportional to the
expectations an event *could* match; this benchmark measures the next rung:
``backend="dfa"`` (:mod:`repro.streaming.automaton`) compiles every
subscription's structural spine into one shared automaton, so a warm
StartElement costs one transition-table lookup plus a stack push no matter
how many subscriptions stand.  The workload is the anti-trie regime where
per-event dispatch dominates: ``low_overlap_workload`` subscriptions rooted
across a wide tag vocabulary (~75% structurally decided, ~25% qualifier
gated), matched verdict-only against a large ``tagged_sections_document`` —
the SDI shape where a standing index serves a heavy document feed.

Three engines are timed per scale (N ∈ {100, 1000} subscriptions):

* the expectation engine (``backend="expectations"``, the PR 2 baseline),
* the DFA backend *cold* (first document ever: subset construction on every
  miss), and
* the DFA backend *warm* (transition table already materialized — the
  steady state of a broker session serving a feed).

The acceptance bar is warm DFA ≥ 3x expectation-engine events/sec at
N=1000; the smoke test records an ``automaton_sdi`` section into
``BENCH_multi_query_sdi.json`` (locally measured ~10-16x warm, ~2-2.5x
cold).
"""

import time

import pytest

from repro.bench.reporting import (
    MULTI_QUERY_SDI_ARTIFACT,
    Table,
    artifact_path,
    update_bench_artifact,
)
from repro.streaming import SubscriptionIndex
from repro.workloads.queries import low_overlap_workload
from repro.xmlmodel.builder import document_events
from repro.xmlmodel.generator import tagged_sections_document

SCALES = (100, 1000)
REPEATS = 3

DOCUMENT = tagged_sections_document(sections=160, children_per_section=3,
                                    depth=2, seed=3)
EVENTS = list(document_events(DOCUMENT))

ARTIFACT_PATH = artifact_path(MULTI_QUERY_SDI_ARTIFACT)


def _build_index(count):
    index = SubscriptionIndex()
    for position, query in enumerate(low_overlap_workload(count, seed=11)):
        index.add(query, key=position)
    # One-time compilation (trie, automaton NFA) out of the timed region;
    # the DFA transition table deliberately starts cold.
    index.matcher(backend="expectations")
    index.matcher(backend="dfa")
    return index


def _timed_run(index, backend):
    """Best-of-REPEATS verdict-only pass; returns (result, matcher, secs)."""
    best = float("inf")
    result = matcher = None
    for _ in range(REPEATS):
        candidate = index.matcher(matches_only=True, backend=backend)
        start = time.perf_counter()
        outcome = candidate.process(EVENTS)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best, result, matcher = elapsed, outcome, candidate
    return result, matcher, best


def _bench(count, report):
    index = _build_index(count)
    events = len(EVENTS)

    # Cold: the very first document through a fresh automaton.
    cold_matcher = index.matcher(matches_only=True, backend="dfa")
    start = time.perf_counter()
    cold_result = cold_matcher.process(EVENTS)
    cold_time = time.perf_counter() - start

    dfa_result, dfa_matcher, dfa_time = _timed_run(index, "dfa")
    exp_result, exp_matcher, exp_time = _timed_run(index, "expectations")

    # Identical routing from every engine.
    assert (cold_result.matching_keys == dfa_result.matching_keys
            == exp_result.matching_keys)

    dfa_stats = dfa_matcher.stats
    table = Table(
        f"Lazy-DFA structural dispatch vs expectation engine "
        f"(N={count} low-overlap subscriptions, {events} events, "
        f"{dfa_matcher.dfa_state_count()} DFA states)",
        ["engine", "wall ms", "events/sec", "lookups/event",
         "checked/event", "states materialized"],
    )
    table.add_row("expectations", f"{exp_time * 1e3:.1f}",
                  f"{events / exp_time:,.0f}", "-",
                  f"{exp_matcher.stats.expectations_checked / events:.2f}",
                  "-")
    table.add_row("dfa, cold", f"{cold_time * 1e3:.1f}",
                  f"{events / cold_time:,.0f}",
                  f"{cold_matcher.stats.transition_cache_lookups / events:.2f}",
                  f"{cold_matcher.stats.expectations_checked / events:.2f}",
                  cold_matcher.stats.dfa_states_materialized)
    table.add_row("dfa, warm", f"{dfa_time * 1e3:.1f}",
                  f"{events / dfa_time:,.0f}",
                  f"{dfa_stats.transition_cache_lookups / events:.2f}",
                  f"{dfa_stats.expectations_checked / events:.2f}",
                  dfa_stats.dfa_states_materialized)
    report(table.render())

    return {
        "subscriptions": count,
        "events": events,
        "events_per_sec_expectations": round(events / exp_time),
        "events_per_sec_dfa_cold": round(events / cold_time),
        "events_per_sec_dfa": round(events / dfa_time),
        "speedup_warm": round(exp_time / dfa_time, 2),
        "speedup_cold": round(exp_time / cold_time, 2),
        "wall_ms_expectations": round(exp_time * 1e3, 3),
        "wall_ms_dfa_cold": round(cold_time * 1e3, 3),
        "wall_ms_dfa": round(dfa_time * 1e3, 3),
        "dfa_states": dfa_matcher.dfa_state_count(),
        "dfa_states_materialized_warm": dfa_stats.dfa_states_materialized,
        "transition_cache_lookups": dfa_stats.transition_cache_lookups,
        "transition_cache_hits": dfa_stats.transition_cache_hits,
        "transition_cache_evictions": dfa_stats.transition_cache_evictions,
        "expectations_checked_per_event_expectations":
            round(exp_matcher.stats.expectations_checked / events, 3),
        "expectations_checked_per_event_dfa":
            round(dfa_stats.expectations_checked / events, 3),
        "expectations_created_expectations":
            exp_matcher.stats.expectations_created,
        "expectations_created_dfa": dfa_stats.expectations_created,
    }


@pytest.mark.parametrize("count", SCALES, ids=[f"subs{n}" for n in SCALES])
def test_automaton_sdi(report, count):
    row = _bench(count, report)
    # Qualifier gating: the DFA backend spawns expectations only at
    # structurally viable elements.
    assert (row["expectations_created_dfa"]
            < row["expectations_created_expectations"])
    if count >= 1000:
        # The acceptance bar: warm lazy-DFA dispatch beats the expectation
        # engine by >= 3x events/sec at N=1000 (locally ~10-16x, so the
        # margin absorbs heavy runner noise).
        assert row["speedup_warm"] >= 3.0
        # A warm table means no subset construction at all.
        assert row["dfa_states_materialized_warm"] == 0


def test_automaton_sdi_smoke(report):
    """CI smoke: correctness at every scale plus the ``automaton_sdi``
    trajectory section of ``BENCH_multi_query_sdi.json``.  No wall-clock
    ratio assertion here — shared runners are too noisy; the >= 3x bar is
    asserted by the full parametrized benchmark above."""
    rows = [_bench(count, report) for count in SCALES]
    at_1000 = rows[-1]
    assert at_1000["subscriptions"] == 1000
    assert at_1000["dfa_states_materialized_warm"] == 0
    assert (at_1000["expectations_created_dfa"]
            < at_1000["expectations_created_expectations"])
    update_bench_artifact(ARTIFACT_PATH, "automaton_sdi", {
        "document_events": len(EVENTS),
        "scales": rows,
    })
