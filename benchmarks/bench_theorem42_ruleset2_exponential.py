"""E7 — Theorem 4.2: RuleSet2 is exponential in the worst case, linear in the best.

Worst-case workload: chains of ``following``/reverse interactions — each
interaction multiplies the number of union terms (result type 3 in the proof
of Theorem 4.2).  Best-case workload: the same reverse-step chains as
experiment E6, where every rule application removes a reverse step outright.

The report shows, for growing interaction counts, the number of union terms
and total output length under RuleSet2 next to RuleSet1's linear output, and
the successive growth ratios demonstrating the super-linear shape.
"""

from repro.bench.reporting import Table, growth_ratios
from repro.rewrite import rare
from repro.workloads.queries import following_reverse_chain, parent_chain
from repro.xpath import analysis

WORST_CASE_LENGTHS = (1, 2, 3, 4, 5)
BEST_CASE_LENGTHS = (1, 2, 4, 6, 8)


def _worst_case_sweep():
    return [rare(following_reverse_chain(length), ruleset="ruleset2",
                 max_applications=200_000)
            for length in WORST_CASE_LENGTHS]


def test_theorem42_worst_case_growth(benchmark, report):
    results = benchmark(_worst_case_sweep)

    table = Table(
        "Theorem 4.2 — RuleSet2 on following/preceding interaction chains (worst case)",
        ["interactions", "input len", "union terms", "output len", "rule applications"],
    )
    sizes = []
    for length, result in zip(WORST_CASE_LENGTHS, results):
        terms = analysis.union_term_count(result.result)
        output_length = analysis.path_length(result.result)
        sizes.append(output_length)
        table.add_row(length, analysis.path_length(result.input), terms,
                      output_length, result.applications)
        assert analysis.count_joins(result.result) == 0
        assert analysis.count_reverse_steps(result.result) == 0

    ratios = growth_ratios(sizes)
    table.add_row("growth ratios", "-", "-",
                  " ".join(f"{ratio:.2f}" for ratio in ratios), "-")
    # Super-linear growth: the ratio between successive sizes does not shrink
    # towards 1 the way a linear (constant-increment) series would.
    assert ratios[-1] > 1.5, "Theorem 4.2 predicts super-linear growth"
    assert sizes[-1] > 10 * sizes[0]
    report(table.render())


def test_theorem42_best_case_is_linear(benchmark, report):
    results = benchmark(lambda: [rare(parent_chain(length), ruleset="ruleset2")
                                 for length in BEST_CASE_LENGTHS])

    table = Table(
        "Theorem 4.2 — RuleSet2 on parent-chains (best case: linear)",
        ["reverse steps", "output len", "union terms", "rule applications"],
    )
    increments = []
    previous = None
    for length, result in zip(BEST_CASE_LENGTHS, results):
        output_length = analysis.path_length(result.result)
        table.add_row(length, output_length,
                      analysis.union_term_count(result.result), result.applications)
        if previous is not None:
            increments.append(output_length - previous)
        previous = output_length
    assert analysis.union_term_count(results[-1].result) == 1
    report(table.render())
