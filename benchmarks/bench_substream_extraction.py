"""E14 — substream extraction: the cost of serving content, not verdicts.

The emission layer (:mod:`repro.streaming.delivery`) lets one matching pass
deliver the matched *substream* — each match's subtree re-serialized to XML
bytes — instead of node ids.  This benchmark measures what that costs and
what it produces, in the honest unit of serving work: bytes out per second
crossing the subscriber boundary, alongside the engine's events/sec.

The workload is ``extraction_workload`` subscriptions (bounded leaf-ish
subtrees plus whole inner sections, so extracted regions nest and overlap
across subscribers and share one tee buffer) over a large
``tagged_sections_document``, matched on the warm DFA backend at
N ∈ {100, 1000} — the shape of a content router serving a document feed.

Three passes are timed per scale:

* node-id delivery (the legacy default) as the baseline,
* substream delivery, buffered (``SubscriptionResult.payload``),
* substream delivery, streaming (``on_payload`` callback per match).

The smoke test records a ``substream_extraction`` section into
``BENCH_multi_query_sdi.json``; the regression harness tracks its
``events_per_sec_substream`` as an (initially advisory) gate.  The hard
assertion here is correctness plus tee accounting — every payload byte
counted, zero capture windows left open — not a wall-clock ratio: shared
runners are too noisy, and the zero-cost-when-idle property of the tee is
pinned by the node-id-mode gate of ``bench_automaton_sdi.py`` instead.
"""

import time

import pytest

from repro.bench.reporting import (
    MULTI_QUERY_SDI_ARTIFACT,
    Table,
    artifact_path,
    update_bench_artifact,
)
from repro.streaming import SubscriptionIndex, SubstreamDelivery
from repro.workloads.queries import extraction_workload
from repro.xmlmodel.builder import document_events
from repro.xmlmodel.generator import tagged_sections_document

SCALES = (100, 1000)
REPEATS = 3

DOCUMENT = tagged_sections_document(sections=160, children_per_section=3,
                                    depth=2, seed=3)
EVENTS = list(document_events(DOCUMENT))

ARTIFACT_PATH = artifact_path(MULTI_QUERY_SDI_ARTIFACT)


def _build_index(count):
    index = SubscriptionIndex()
    for position, query in enumerate(extraction_workload(count, seed=11)):
        index.add(query, key=position)
    # Compile outside the timed region and warm the DFA transition table:
    # the steady state of a broker serving a feed.
    index.matcher(backend="dfa").process(EVENTS)
    return index


def _timed_run(index, delivery_factory):
    """Best-of-REPEATS full pass; returns (result, matcher, secs)."""
    best = float("inf")
    result = matcher = None
    for _ in range(REPEATS):
        candidate = index.matcher(backend="dfa",
                                  delivery=delivery_factory())
        start = time.perf_counter()
        outcome = candidate.process(EVENTS)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best, result, matcher = elapsed, outcome, candidate
    return result, matcher, best


def _bench(count, report):
    index = _build_index(count)
    events = len(EVENTS)

    ids_result, ids_matcher, ids_time = _timed_run(index, lambda: None)
    sub_result, sub_matcher, sub_time = _timed_run(index, SubstreamDelivery)

    streamed = []
    callback_delivery = lambda: SubstreamDelivery(  # noqa: E731
        on_payload=lambda key, node_id, data: streamed.append(len(data)))
    cb_result, cb_matcher, cb_time = _timed_run(index, callback_delivery)

    # Substream mode answers the same question as id mode, plus payload.
    assert [r.node_ids for r in sub_result] == [r.node_ids for r in ids_result]
    # Every payload byte is accounted for, both routing flavours.
    bytes_out = sub_matcher.stats.bytes_emitted
    assert bytes_out == sum(len(r.payload) for r in sub_result)
    assert cb_matcher.stats.bytes_emitted == bytes_out
    # best-of-REPEATS reruns: the callback saw REPEATS identical passes.
    assert sum(streamed) == bytes_out * REPEATS
    # The tee left nothing behind.
    assert sub_matcher.registry_sizes()["open_capture_windows"] == 0

    subtrees = sub_matcher.stats.subtrees_emitted
    table = Table(
        f"Substream extraction vs node-id delivery "
        f"(N={count} extraction subscriptions, {events} events, "
        f"{subtrees} subtrees / {bytes_out:,} bytes out)",
        ["delivery", "wall ms", "events/sec", "bytes-out/sec"],
    )
    table.add_row("node ids", f"{ids_time * 1e3:.1f}",
                  f"{events / ids_time:,.0f}", "-")
    table.add_row("substream, buffered", f"{sub_time * 1e3:.1f}",
                  f"{events / sub_time:,.0f}",
                  f"{bytes_out / sub_time:,.0f}")
    table.add_row("substream, callback", f"{cb_time * 1e3:.1f}",
                  f"{events / cb_time:,.0f}",
                  f"{bytes_out / cb_time:,.0f}")
    report(table.render())

    return {
        "subscriptions": count,
        "events": events,
        "subtrees_emitted": subtrees,
        "bytes_emitted": bytes_out,
        "events_per_sec_ids": round(events / ids_time),
        "events_per_sec_substream": round(events / sub_time),
        "events_per_sec_substream_callback": round(events / cb_time),
        "bytes_out_per_sec_substream": round(bytes_out / sub_time),
        "bytes_out_per_sec_substream_callback": round(bytes_out / cb_time),
        "wall_ms_ids": round(ids_time * 1e3, 3),
        "wall_ms_substream": round(sub_time * 1e3, 3),
        "wall_ms_substream_callback": round(cb_time * 1e3, 3),
        "extraction_overhead": round(sub_time / ids_time, 2),
    }


@pytest.mark.parametrize("count", SCALES, ids=[f"subs{n}" for n in SCALES])
def test_substream_extraction(report, count):
    row = _bench(count, report)
    assert row["subtrees_emitted"] > 0
    assert row["bytes_emitted"] > 0


def test_substream_extraction_smoke(report):
    """CI smoke: correctness and accounting at every scale plus the
    ``substream_extraction`` trajectory section of
    ``BENCH_multi_query_sdi.json`` (events/sec and bytes-out/sec at
    N ∈ {100, 1000})."""
    rows = [_bench(count, report) for count in SCALES]
    at_1000 = rows[-1]
    assert at_1000["subscriptions"] == 1000
    assert at_1000["bytes_emitted"] > 0
    update_bench_artifact(ARTIFACT_PATH, "substream_extraction", {
        "document_events": len(EVENTS),
        "scales": rows,
    })
