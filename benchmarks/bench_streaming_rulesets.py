"""E9 (continued) — streaming cost of RuleSet1 output vs RuleSet2 output.

Section 4 notes that RuleSet1's rewriting carries one node-identity join per
removed reverse step and that such paths "might remain expensive to
evaluate", while RuleSet2's join-free output is "simpler, hence more
convenient to evaluate".  This benchmark makes that concrete: the same
queries, rewritten with both rule sets, are streamed over the same document
and the buffering each rewriting requires is compared.
"""

import pytest

from repro.bench.reporting import Table
from repro.rewrite import remove_reverse_axes
from repro.streaming import stream_evaluate
from repro.workloads.documents import streaming_documents
from repro.xmlmodel.builder import document_events

QUERIES = {
    "names-before-price": "/descendant::price/preceding::name",
    "editors-of-journals": "/descendant::editor[parent::journal]",
    "titles-before-names": "/descendant::name/preceding::title[ancestor::journal]",
}
DOCUMENT = streaming_documents()[1]  # catalogue-medium


@pytest.mark.parametrize("label", sorted(QUERIES))
def test_streaming_cost_of_rulesets(benchmark, report, label):
    query = QUERIES[label]
    document = DOCUMENT.build()
    events = list(document_events(document))
    ruleset1_path = remove_reverse_axes(query, ruleset="ruleset1")
    ruleset2_path = remove_reverse_axes(query, ruleset="ruleset2")

    ruleset2_result = benchmark(lambda: stream_evaluate(ruleset2_path, events))
    ruleset1_result = stream_evaluate(ruleset1_path, events)

    assert ruleset1_result.node_ids == ruleset2_result.node_ids

    table = Table(
        f"Streaming cost of the two rewritings — {label} on {DOCUMENT.name}",
        ["rewriting", "results", "candidates buffered", "max live expectations",
         "memory units"],
    )
    table.add_row("RuleSet1 (joins)", len(ruleset1_result.node_ids),
                  ruleset1_result.stats.candidates_buffered,
                  ruleset1_result.stats.max_live_expectations,
                  ruleset1_result.stats.memory_units)
    table.add_row("RuleSet2 (join-free)", len(ruleset2_result.node_ids),
                  ruleset2_result.stats.candidates_buffered,
                  ruleset2_result.stats.max_live_expectations,
                  ruleset2_result.stats.memory_units)
    assert (ruleset2_result.stats.memory_units
            <= ruleset1_result.stats.memory_units)
    report(table.render())
