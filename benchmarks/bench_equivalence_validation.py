"""E10 — empirical validation coverage of the paper's equivalences.

Every lemma instance (Lemma 3.1, Lemma 3.2, the driver congruences) and a
randomized sample of reverse-axis paths is checked for input/output
equivalence over a pool of randomized documents, counting the number of
(document, context node) checks performed.  This is the benchmark companion
of the property-based test suite: it reports how much evidence backs the
"rewriting preserves the selected nodes" claim and how long a full
validation sweep takes.
"""

from repro.bench.reporting import Table
from repro.rewrite import rare
from repro.rewrite.lemmas import all_equivalences
from repro.semantics.equivalence import paths_equivalent_on
from repro.workloads.queries import random_reverse_path
from repro.xmlmodel.generator import RandomDocumentPool
from repro.xpath.parser import parse_xpath

POOL = RandomDocumentPool(seeds=range(4), max_depth=3, max_children=3)
RANDOM_PATHS = [random_reverse_path(seed) for seed in range(12)]


def _validate_lemmas(documents):
    checks, failures = 0, 0
    for equivalence in all_equivalences():
        if equivalence.requires_single_document_element:
            continue
        outcome = paths_equivalent_on(equivalence.left, equivalence.right, documents)
        checks += outcome.checks
        failures += 0 if outcome.equivalent else 1
    return checks, failures


def _validate_rewritings(documents):
    checks, failures = 0, 0
    for expression in RANDOM_PATHS:
        original = parse_xpath(expression)
        for ruleset in ("ruleset1", "ruleset2"):
            rewritten = rare(original, ruleset=ruleset).result
            outcome = paths_equivalent_on(original, rewritten, documents)
            checks += outcome.checks
            failures += 0 if outcome.equivalent else 1
    return checks, failures


def test_equivalence_validation_sweep(benchmark, report):
    documents = POOL.documents()

    def sweep():
        return _validate_lemmas(documents), _validate_rewritings(documents)

    (lemma_checks, lemma_failures), (rewrite_checks, rewrite_failures) = benchmark(sweep)

    assert lemma_failures == 0
    assert rewrite_failures == 0

    table = Table(
        "Empirical validation of the paper's equivalences (experiment E10)",
        ["what", "equivalences", "context checks", "failures"],
    )
    lemma_count = sum(1 for eq in all_equivalences()
                      if not eq.requires_single_document_element)
    table.add_row("Lemma 3.1/3.2 + driver congruences", lemma_count,
                  lemma_checks, lemma_failures)
    table.add_row("rare rewritings (both rule sets)", 2 * len(RANDOM_PATHS),
                  rewrite_checks, rewrite_failures)
    report(table.render())
