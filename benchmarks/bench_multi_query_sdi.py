"""E11 — multi-subscription SDI: shared index vs. independent matchers.

The paper's Section 1 motivates reverse-axis removal with selective
dissemination of information: every incoming document is matched against
many standing subscriptions.  This benchmark compiles N overlapping
subscriptions (N ∈ {10, 100, 1000}) into one shared
:class:`repro.streaming.engine.SubscriptionIndex` and matches a journal
catalogue in a single pass, against the baseline of N independent
:class:`StreamingMatcher` passes over the same stream.

Reported per configuration: total expectation activations, peak live
expectations, wall time, and the per-event cost.  The headline comparison
runs the shared engine in full result-collecting mode — the same work the
independent matchers do — so the activation gap isolates what the trie's
prefix sharing saves.  The verdict-only SDI fast path (``matches_only``,
which additionally stops matching satisfied subscriptions early) is
reported as a third row.
"""

import time

import pytest

from repro.bench.reporting import Table
from repro.streaming import SubscriptionIndex
from repro.streaming.matcher import StreamingMatcher
from repro.workloads.queries import subscription_workload
from repro.xmlmodel.builder import document_events
from repro.xmlmodel.generator import journal_document

#: Deliberately small: the independent baseline costs N full passes, and at
#: N = 1000 the document size multiplies directly into the baseline's cost.
DOCUMENT = journal_document(journals=3, articles_per_journal=2,
                            authors_per_article=2, seed=5)
EVENTS = list(document_events(DOCUMENT))

SCALES = (10, 100, 1000)


def _shared_run(index, matches_only):
    start = time.perf_counter()
    matcher = index.matcher(matches_only=matches_only)
    result = matcher.process(EVENTS)
    elapsed = time.perf_counter() - start
    return result, matcher.stats, elapsed


def _independent_run(index):
    start = time.perf_counter()
    node_ids = {}
    expectations = 0
    peak_live = 0
    for subscription in index.subscriptions:
        matcher = StreamingMatcher(subscription.path)
        node_ids[subscription.key] = matcher.process(EVENTS)
        expectations += matcher.stats.expectations_created
        peak_live += matcher.stats.max_live_expectations
    elapsed = time.perf_counter() - start
    return node_ids, expectations, peak_live, elapsed


def _bench_scale(count, report):
    queries = subscription_workload(count, seed=11)
    index = SubscriptionIndex()
    for position, query in enumerate(queries):
        index.add(query, key=position)
    summary = index.sharing_summary()

    shared_result, shared_stats, shared_time = \
        _shared_run(index, matches_only=False)
    sdi_result, sdi_stats, sdi_time = _shared_run(index, matches_only=True)
    node_ids, indep_expectations, indep_peak, indep_time = \
        _independent_run(index)

    # Same answer for every subscriber, whichever engine produced it.
    for subscription_result in shared_result:
        assert subscription_result.node_ids == node_ids[subscription_result.key]
    for subscription_result in sdi_result:
        assert subscription_result.matched == \
            bool(node_ids[subscription_result.key])

    events = len(EVENTS)
    table = Table(
        f"Shared SubscriptionIndex vs {count} independent matchers "
        f"({events} events/document, trie {summary['trie_nodes']} nodes "
        f"for {summary['spine_steps']} subscription steps)",
        ["engine", "passes", "expectations", "peak live", "wall ms",
         "us/event"],
    )
    table.add_row("shared index", 1, shared_stats.expectations_created,
                  shared_stats.max_live_expectations,
                  f"{shared_time * 1e3:.2f}",
                  f"{shared_time / events * 1e6:.2f}")
    table.add_row("shared, verdicts only", 1, sdi_stats.expectations_created,
                  sdi_stats.max_live_expectations,
                  f"{sdi_time * 1e3:.2f}",
                  f"{sdi_time / events * 1e6:.2f}")
    table.add_row("independent", count, indep_expectations, indep_peak,
                  f"{indep_time * 1e3:.2f}",
                  f"{indep_time / (events * count) * 1e6:.2f} (x{count})")
    report(table.render())

    return shared_stats, shared_time, indep_expectations, indep_time


@pytest.mark.parametrize("count", SCALES, ids=[f"subs{n}" for n in SCALES])
def test_multi_query_sdi(report, count):
    shared_stats, shared_time, indep_expectations, indep_time = \
        _bench_scale(count, report)
    # Both sides collect full results here, so the gap is the trie's prefix
    # sharing alone: measurably fewer expectation activations than N
    # independent matchers over the same stream...
    assert shared_stats.expectations_created < indep_expectations
    # ...and at SDI scale the single pass must also win wall-clock, by a
    # margin wide enough to be robust against timer noise.
    if count >= 1000:
        assert shared_time < indep_time / 2


def test_multi_query_sdi_smoke(report):
    """Fast CI smoke: small scale, correctness + sharing assertions only."""
    shared_stats, _, indep_expectations, _ = _bench_scale(25, report)
    assert shared_stats.expectations_created < indep_expectations
