"""E11 — multi-subscription SDI: shared index vs. independent matchers.

The paper's Section 1 motivates reverse-axis removal with selective
dissemination of information: every incoming document is matched against
many standing subscriptions.  This benchmark compiles N overlapping
subscriptions (N ∈ {10, 100, 1000}) into one shared
:class:`repro.streaming.engine.SubscriptionIndex` and matches a journal
catalogue in a single pass, against the baseline of N independent
:class:`StreamingMatcher` passes over the same stream.

Two comparisons are reported per configuration:

* *sharing*: the shared trie engine vs. N independent matchers (what PR 1
  introduced) — total expectation activations and wall time;
* *dispatch*: the tag-indexed expectation dispatch vs. the linear-scan
  reference engine (``indexed=False``) over the same shared trie —
  ``expectations_checked`` per start-element against the
  ``linear_scan_checks`` counterfactual.

The smoke test additionally writes ``BENCH_multi_query_sdi.json`` at the
repository root (events/sec, expectations checked per event, activation
counts at every scale) so the performance trajectory is tracked across
revisions.
"""

import time

import pytest

from repro.bench.reporting import (
    MULTI_QUERY_SDI_ARTIFACT,
    Table,
    artifact_path,
    update_bench_artifact,
)
from repro.streaming import SubscriptionIndex
from repro.streaming.matcher import StreamingMatcher
from repro.workloads.queries import subscription_workload
from repro.xmlmodel.builder import document_events
from repro.xmlmodel.generator import journal_document

#: Deliberately small: the independent baseline costs N full passes, and at
#: N = 1000 the document size multiplies directly into the baseline's cost.
DOCUMENT = journal_document(journals=3, articles_per_journal=2,
                            authors_per_article=2, seed=5)
EVENTS = list(document_events(DOCUMENT))

SCALES = (10, 100, 1000)

ARTIFACT_PATH = artifact_path(MULTI_QUERY_SDI_ARTIFACT)


def _build_index(count):
    queries = subscription_workload(count, seed=11)
    index = SubscriptionIndex()
    for position, query in enumerate(queries):
        index.add(query, key=position)
    return index


def _shared_run(index, matches_only, indexed=True):
    # This section benchmarks the expectation engine (the gated
    # events_per_sec_indexed metric), so the backend is pinned explicitly —
    # the engine default is "dfa", measured by bench_automaton_sdi.py.
    start = time.perf_counter()
    matcher = index.matcher(matches_only=matches_only, indexed=indexed,
                            backend="expectations")
    result = matcher.process(EVENTS)
    elapsed = time.perf_counter() - start
    return result, matcher.stats, elapsed


def _independent_run(index):
    start = time.perf_counter()
    node_ids = {}
    expectations = 0
    peak_live = 0
    for subscription in index.subscriptions:
        matcher = StreamingMatcher(subscription.path,
                                   backend="expectations")
        node_ids[subscription.key] = matcher.process(EVENTS)
        expectations += matcher.stats.expectations_created
        peak_live += matcher.stats.max_live_expectations
    elapsed = time.perf_counter() - start
    return node_ids, expectations, peak_live, elapsed


def _bench_scale(count, report):
    index = _build_index(count)
    summary = index.sharing_summary()

    shared_result, shared_stats, shared_time = \
        _shared_run(index, matches_only=False)
    linear_result, linear_stats, linear_time = \
        _shared_run(index, matches_only=False, indexed=False)
    sdi_result, sdi_stats, sdi_time = _shared_run(index, matches_only=True)
    node_ids, indep_expectations, indep_peak, indep_time = \
        _independent_run(index)

    # Same answer for every subscriber, whichever engine produced it.
    for subscription_result in shared_result:
        assert subscription_result.node_ids == node_ids[subscription_result.key]
    for indexed_row, linear_row in zip(shared_result, linear_result):
        assert indexed_row.node_ids == linear_row.node_ids
    for subscription_result in sdi_result:
        assert subscription_result.matched == \
            bool(node_ids[subscription_result.key])

    events = len(EVENTS)
    table = Table(
        f"Shared SubscriptionIndex vs {count} independent matchers "
        f"({events} events/document, trie {summary['trie_nodes']} nodes "
        f"for {summary['spine_steps']} subscription steps)",
        ["engine", "passes", "expectations", "checked/event", "peak live",
         "wall ms", "us/event"],
    )
    table.add_row("shared index", 1, shared_stats.expectations_created,
                  f"{shared_stats.expectations_checked / events:.2f}",
                  shared_stats.max_live_expectations,
                  f"{shared_time * 1e3:.2f}",
                  f"{shared_time / events * 1e6:.2f}")
    table.add_row("shared, linear scan", 1, linear_stats.expectations_created,
                  f"{linear_stats.expectations_checked / events:.2f}",
                  linear_stats.max_live_expectations,
                  f"{linear_time * 1e3:.2f}",
                  f"{linear_time / events * 1e6:.2f}")
    table.add_row("shared, verdicts only", 1, sdi_stats.expectations_created,
                  f"{sdi_stats.expectations_checked / events:.2f}",
                  sdi_stats.max_live_expectations,
                  f"{sdi_time * 1e3:.2f}",
                  f"{sdi_time / events * 1e6:.2f}")
    table.add_row("independent", count, indep_expectations, "-", indep_peak,
                  f"{indep_time * 1e3:.2f}",
                  f"{indep_time / (events * count) * 1e6:.2f} (x{count})")
    report(table.render())

    return {
        "subscriptions": count,
        "trie_nodes": summary["trie_nodes"],
        "events": events,
        "events_per_sec_indexed": round(events / shared_time),
        "events_per_sec_linear": round(events / linear_time),
        "wall_ms_indexed": round(shared_time * 1e3, 3),
        "wall_ms_linear": round(linear_time * 1e3, 3),
        "wall_ms_verdicts_only": round(sdi_time * 1e3, 3),
        "wall_ms_independent": round(indep_time * 1e3, 3),
        "expectations_created": shared_stats.expectations_created,
        "expectations_created_independent": indep_expectations,
        "expectations_checked": shared_stats.expectations_checked,
        "expectations_checked_per_event":
            round(shared_stats.expectations_checked / events, 3),
        "linear_scan_checks": shared_stats.linear_scan_checks,
        "linear_scan_checks_per_event":
            round(shared_stats.linear_scan_checks / events, 3),
        "check_reduction_ratio":
            round(shared_stats.linear_scan_checks
                  / max(1, shared_stats.expectations_checked), 2),
        "max_live_expectations": shared_stats.max_live_expectations,
    }


@pytest.mark.parametrize("count", SCALES, ids=[f"subs{n}" for n in SCALES])
def test_multi_query_sdi(report, count):
    row = _bench_scale(count, report)
    # Both sides collect full results here, so the activation gap is the
    # trie's prefix sharing alone: measurably fewer expectation activations
    # than N independent matchers over the same stream...
    assert row["expectations_created"] < row["expectations_created_independent"]
    # ...the tag-indexed dispatch consults far fewer expectations per node
    # event than the linear scan it replaced...
    if count >= 1000:
        assert row["linear_scan_checks"] >= 5 * row["expectations_checked"]
    # ...and at SDI scale the single pass must also win wall-clock, by a
    # margin wide enough to be robust against timer noise.
    if count >= 1000:
        assert row["wall_ms_indexed"] < row["wall_ms_independent"] / 2


def test_multi_query_sdi_smoke(report):
    """Fast CI smoke: correctness and sharing assertions at every scale,
    plus the ``BENCH_multi_query_sdi.json`` trajectory artifact."""
    rows = [_bench_scale(count, report) for count in SCALES]
    for row in rows:
        assert row["expectations_created"] < \
            row["expectations_created_independent"]
    # The acceptance bar of the dispatch index: at N=1000 it checks >=5x
    # fewer expectations per start-element than a linear scan would.
    at_1000 = rows[-1]
    assert at_1000["subscriptions"] == 1000
    assert at_1000["linear_scan_checks"] >= 5 * at_1000["expectations_checked"]
    update_bench_artifact(ARTIFACT_PATH, "multi_query_sdi", {
        "document_events": len(EVENTS),
        "scales": rows,
    })
