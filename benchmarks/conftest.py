"""Benchmark-suite plumbing.

Each benchmark regenerates one of the paper's artifacts (a worked example, a
figure trace, a complexity curve, a comparison table).  Timings are handled
by pytest-benchmark; the *tables and series themselves* are collected through
the ``report`` fixture and printed in the terminal summary, so that

    pytest benchmarks/ --benchmark-only | tee bench_output.txt

captures both the timings and the reproduced artifacts (EXPERIMENTS.md is
written from exactly that output).
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

_REPORTS = []


@pytest.fixture
def report():
    """Register a rendered table/series for the end-of-run summary."""

    def _add(text: str) -> None:
        _REPORTS.append(text)

    return _add


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("reproduced paper artifacts")
    for text in _REPORTS:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
