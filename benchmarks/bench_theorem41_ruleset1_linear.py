"""E6 — Theorem 4.1: RuleSet1 rewriting is linear in the input length.

Workload: chains of reverse steps of growing length (``/descendant::t0/
parent::t1/ancestor::t2/...``).  For each length the output length (number
of location steps), the number of joins and the number of rule applications
are reported; a least-squares fit confirms the linear shape (r² ≈ 1) and the
timing series is produced by pytest-benchmark.
"""

import pytest

from repro.bench.reporting import Table, linear_fit
from repro.rewrite import rare
from repro.workloads.queries import ancestor_chain, parent_chain, preceding_chain
from repro.xpath import analysis

LENGTHS = (1, 2, 4, 6, 8, 10, 12)
FAMILIES = {
    "parent": parent_chain,
    "ancestor": ancestor_chain,
    "preceding": preceding_chain,
}


def _sweep(factory):
    return [rare(factory(length), ruleset="ruleset1") for length in LENGTHS]


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_theorem41_linear_output(benchmark, report, family):
    factory = FAMILIES[family]
    results = benchmark(lambda: _sweep(factory))

    table = Table(
        f"Theorem 4.1 — RuleSet1 on {family}-chains (output size is linear)",
        ["reverse steps", "input len", "output len", "joins", "rule applications"],
    )
    xs, ys = [], []
    for length, result in zip(LENGTHS, results):
        input_length = analysis.path_length(result.input)
        output_length = analysis.path_length(result.result)
        table.add_row(length, input_length, output_length,
                      analysis.count_joins(result.result), result.applications)
        xs.append(input_length)
        ys.append(output_length)
        assert result.applications == length
        assert analysis.count_joins(result.result) == length

    slope, intercept, r_squared = linear_fit(xs, ys)
    table.add_row("fit", f"slope={slope:.2f}", f"intercept={intercept:.2f}",
                  f"r2={r_squared:.4f}", "linear" if r_squared > 0.99 else "NOT linear")
    assert r_squared > 0.99, "Theorem 4.1 predicts a linear output size"
    report(table.render())
