"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments that lack the ``wheel`` package (``pip install -e .`` then falls
back to the legacy ``setup.py develop`` code path).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'XPath: Looking Forward' (EDBT 2002): "
        "reverse-axis removal for streaming XPath"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
