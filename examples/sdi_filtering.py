#!/usr/bin/env python3
"""Selective dissemination of information (SDI) with rewritten subscriptions.

Section 1 of the paper motivates reverse-axis removal with publish/subscribe
systems: incoming documents must be matched against many XPath subscriptions
*while they stream in*, before being routed to subscribers.  Subscriptions
written naturally often use reverse axes; this example

1. declares a handful of subscriptions over journal catalogues (several with
   reverse axes),
2. compiles them into a shared :class:`repro.SubscriptionIndex` — reverse
   axes are removed once per distinct subscription text (memoized by the
   compiled-query cache) and common leading steps are merged into one prefix
   trie,
3. matches a batch of generated documents, each in a **single** streaming
   pass for *all* subscribers at once, and
4. prints the routing table, then contrasts the shared engine's per-event
   work with one independent matcher per subscription.

Run with::

    python examples/sdi_filtering.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import (  # noqa: E402
    SubscriptionIndex,
    compile_cache_info,
    document_events,
    journal_document,
    stream_evaluate,
    to_string,
)

SUBSCRIPTIONS = {
    "pricing-team": "/descendant::price/preceding::name",
    "editors-desk": "/descendant::editor[parent::journal]",
    "title-watch": "/descendant::name/preceding::title[ancestor::journal]",
    "database-fans": "//title[self::node() = /descendant::title]",
    "article-digest": "//article/authors/name",
    # Same query text as the pricing team: compiled once, matched once.
    "pricing-mirror": "/descendant::price/preceding::name",
}

DOCUMENTS = {
    "catalogue-with-prices": journal_document(journals=3, articles_per_journal=2,
                                              authors_per_article=2, seed=1),
    "catalogue-no-prices": journal_document(journals=3, articles_per_journal=2,
                                            authors_per_article=2, with_price=False,
                                            seed=2),
    "single-journal": journal_document(journals=1, articles_per_journal=1,
                                       authors_per_article=1, seed=3),
}


def main() -> None:
    print("Compiling subscriptions (reverse axes removed once, up front):")
    index = SubscriptionIndex()
    for subscriber, query in SUBSCRIPTIONS.items():
        subscription = index.add(query, key=subscriber)
        print(f"  {subscriber:15s} {query}")
        print(f"  {'':15s} -> {to_string(subscription.path)}")
    sharing = index.sharing_summary()
    cache = compile_cache_info()
    print()
    print(f"Shared prefix trie: {sharing['trie_nodes']} step nodes for "
          f"{sharing['spine_steps']} subscription steps "
          f"({sharing['sharing_ratio']:.0%} shared); "
          f"query cache: {cache.hits} hits / {cache.misses} misses")
    print()

    print("Routing incoming documents (ONE streaming pass per document,")
    print("all subscriptions advanced together):")
    for name, document in DOCUMENTS.items():
        events = list(document_events(document))
        receivers = index.matching(events)
        print(f"  {name:22s} ({len(document):5d} nodes) -> "
              f"{', '.join(receivers) or '(no subscriber)'}")
    print()

    # How much per-event work does the shared trie save against the naive
    # one-matcher-per-subscription loop?  Both sides collect full results,
    # so the gap below is prefix sharing alone.
    events = list(document_events(DOCUMENTS["catalogue-with-prices"]))
    shared = index.matcher()
    shared.process(events)
    independent = sum(
        stream_evaluate(subscription.path, events).stats.expectations_created
        for subscription in index.subscriptions)
    print(f"Per-document work on 'catalogue-with-prices': "
          f"{shared.stats.expectations_created} expectation activations "
          f"shared vs {independent} for {len(index)} independent matchers.")


if __name__ == "__main__":
    main()
