#!/usr/bin/env python3
"""Selective dissemination of information (SDI) with rewritten subscriptions.

Section 1 of the paper motivates reverse-axis removal with publish/subscribe
systems: incoming documents must be matched against many XPath subscriptions
*while they stream in*, before being routed to subscribers.  Subscriptions
written naturally often use reverse axes; this example

1. declares a handful of subscriptions over journal catalogues (several with
   reverse axes),
2. rewrites each once with RuleSet2 (join-free, cheap to stream),
3. streams a batch of generated documents through the matcher exactly once
   per document/subscription pair, and
4. prints the routing table: which subscriber receives which document.

Run with::

    python examples/sdi_filtering.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import (  # noqa: E402
    document_events,
    journal_document,
    remove_reverse_axes,
    stream_matches,
    to_string,
)

SUBSCRIPTIONS = {
    "pricing-team": "/descendant::price/preceding::name",
    "editors-desk": "/descendant::editor[parent::journal]",
    "title-watch": "/descendant::name/preceding::title[ancestor::journal]",
    "database-fans": "//title[self::node() = /descendant::title]",
    "article-digest": "//article/authors/name",
}

DOCUMENTS = {
    "catalogue-with-prices": journal_document(journals=3, articles_per_journal=2,
                                              authors_per_article=2, seed=1),
    "catalogue-no-prices": journal_document(journals=3, articles_per_journal=2,
                                            authors_per_article=2, with_price=False,
                                            seed=2),
    "single-journal": journal_document(journals=1, articles_per_journal=1,
                                       authors_per_article=1, seed=3),
}


def main() -> None:
    print("Compiling subscriptions (reverse axes removed once, up front):")
    compiled = {}
    for subscriber, query in SUBSCRIPTIONS.items():
        forward = remove_reverse_axes(query, ruleset="ruleset2")
        compiled[subscriber] = forward
        print(f"  {subscriber:15s} {query}")
        print(f"  {'':15s} -> {to_string(forward)}")
    print()

    print("Routing incoming documents (one streaming pass per document and query):")
    for name, document in DOCUMENTS.items():
        events = list(document_events(document))
        receivers = [subscriber for subscriber, forward in compiled.items()
                     if stream_matches(forward, events)]
        print(f"  {name:22s} ({len(document):5d} nodes) -> {', '.join(receivers) or '(no subscriber)'}")


if __name__ == "__main__":
    main()
