#!/usr/bin/env python3
"""Selective dissemination of information (SDI) with rewritten subscriptions.

Section 1 of the paper motivates reverse-axis removal with publish/subscribe
systems: incoming documents must be matched against many XPath subscriptions
*while they stream in*, before being routed to subscribers.  Subscriptions
written naturally often use reverse axes; this example

1. declares a handful of subscriptions over journal catalogues (several with
   reverse axes),
2. compiles them into a shared :class:`repro.SubscriptionIndex` — reverse
   axes are removed once per distinct subscription text (memoized by the
   compiled-query cache) and common leading steps are merged into one prefix
   trie,
3. serves a feed of documents through a :class:`repro.DocumentBroker`: each
   document arrives as raw XML text in small *chunks* (as it would from a
   network socket), is tokenized incrementally, and is matched in a single
   streaming pass for *all* subscribers at once over one reused engine
   session, and
4. prints the routing table and the broker's aggregate accounting, then
   contrasts the shared engine's per-event work with one independent matcher
   per subscription.

Run with::

    python examples/sdi_filtering.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import (  # noqa: E402
    DocumentBroker,
    SubscriptionIndex,
    compile_cache_info,
    document_events,
    journal_document,
    stream_evaluate,
    to_string,
    to_xml,
)

SUBSCRIPTIONS = {
    "pricing-team": "/descendant::price/preceding::name",
    "editors-desk": "/descendant::editor[parent::journal]",
    "title-watch": "/descendant::name/preceding::title[ancestor::journal]",
    "database-fans": "//title[self::node() = /descendant::title]",
    "article-digest": "//article/authors/name",
    # Same query text as the pricing team: compiled once, matched once.
    "pricing-mirror": "/descendant::price/preceding::name",
    # Attribute-qualified subscriptions (the attribute extension, beyond the
    # paper's fragment): attributes arrive complete on the StartElement
    # event, so [@name="..."] verdicts are decided the moment the element
    # opens — no buffering, and early termination in verdict-only mode.
    "vip-watch": '//journal[@tier="gold"]',
    "audit-log": "//journal/@tier",
}

DOCUMENTS = {
    "catalogue-with-prices": journal_document(journals=3, articles_per_journal=2,
                                              authors_per_article=2, seed=1,
                                              with_attributes=True),
    "catalogue-no-prices": journal_document(journals=3, articles_per_journal=2,
                                            authors_per_article=2, with_price=False,
                                            seed=2, with_attributes=True),
    "single-journal": journal_document(journals=1, articles_per_journal=1,
                                       authors_per_article=1, seed=3),
}

#: Documents reach the broker in pieces this small, as from a socket.
CHUNK_SIZE = 64


def main() -> None:
    print("Compiling subscriptions (reverse axes removed once, up front):")
    index = SubscriptionIndex()
    for subscriber, query in SUBSCRIPTIONS.items():
        subscription = index.add(query, key=subscriber)
        print(f"  {subscriber:15s} {query}")
        print(f"  {'':15s} -> {to_string(subscription.path)}")
    sharing = index.sharing_summary()
    cache = compile_cache_info()
    print()
    print(f"Shared prefix trie: {sharing['trie_nodes']} step nodes for "
          f"{sharing['spine_steps']} subscription steps "
          f"({sharing['sharing_ratio']:.0%} shared); "
          f"query cache: {cache.hits} hits / {cache.misses} misses")
    print()

    print("Routing the incoming feed (documents arrive as raw XML text in")
    print(f"{CHUNK_SIZE}-byte chunks; ONE reused engine session, ONE streaming")
    print("pass per document, all subscriptions advanced together):")
    broker = DocumentBroker(index, matches_only=True)
    for name, document in DOCUMENTS.items():
        xml_text = to_xml(document, indent=0)
        chunks = [xml_text[start:start + CHUNK_SIZE]
                  for start in range(0, len(xml_text), CHUNK_SIZE)]
        result = broker.submit(name, chunks)
        print(f"  {name:22s} ({len(chunks):3d} chunks) -> "
              f"{', '.join(result.matching_keys) or '(no subscriber)'}")
    totals = broker.stats
    print()
    print(f"Broker accounting: {totals.documents} documents, "
          f"{totals.deliveries} deliveries, {totals.chunks} chunks tokenized "
          f"(+{totals.chunks_skipped} skipped after early verdicts), "
          f"{totals.events} events processed "
          f"(+{totals.events_skipped} skipped).")
    print()

    # How much per-event work does the shared trie save against the naive
    # one-matcher-per-subscription loop?  Both sides run the expectation
    # engine explicitly (the DFA default would spawn almost none) and
    # collect full results, so the gap below is prefix sharing alone.
    events = list(document_events(DOCUMENTS["catalogue-with-prices"]))
    shared = index.matcher(backend="expectations")
    shared.process(events)
    independent = sum(
        stream_evaluate(subscription.path, events,
                        backend="expectations").stats.expectations_created
        for subscription in index.subscriptions)
    print(f"Per-document work on 'catalogue-with-prices': "
          f"{shared.stats.expectations_created} expectation activations "
          f"shared vs {independent} for {len(index)} independent matchers.")
    print()

    # Backend selection.  Everything above already ran the lazy-DFA backend
    # (the default, backend="dfa"): the subscriptions' structural spines —
    # including following/following-sibling steps, compiled as sibling
    # windows armed by close events — are merged trie-style into one shared
    # lazy automaton, so a warm StartElement costs one transition-table
    # lookup regardless of subscription count; qualifier-carrying
    # subscriptions ([@tier="gold"], [child::price]...) run the expectation
    # machinery only at elements the DFA proved structurally viable.  The
    # transition table is bounded (SubscriptionIndex(dfa_transition_cap=...),
    # default 65536 entries; overflow falls back to on-the-fly subset
    # construction) and stays warm across a broker session's documents —
    # reuse the broker, not fresh matchers, to amortize it.
    # benchmarks/bench_automaton_sdi.py measures >= 3x events/sec over the
    # expectation engine at N=1000 low-overlap subscriptions
    # ('automaton_sdi' in BENCH_multi_query_sdi.json).  The expectation
    # engine (backend="expectations", or REPRO_STREAMING_BACKEND=
    # expectations for a whole process) remains the differential-testing
    # semantics reference: per-event cost scales with the live expectations
    # an event could match, fine for a few subscriptions on one-shot
    # documents, and handy when bisecting a suspected automaton bug.
    dfa_matcher = index.matcher(matches_only=True, backend="dfa")
    dfa_matcher.process(events)
    dfa_again = index.matcher(matches_only=True, backend="dfa")
    dfa_again.process(events)
    print(f"Lazy-DFA backend on the same document: "
          f"{dfa_matcher.dfa_state_count()} DFA states materialized, "
          f"{dfa_matcher.stats.expectations_created} expectations spawned "
          f"(vs {shared.stats.expectations_created} on the expectation "
          f"engine); second pass answered "
          f"{dfa_again.stats.transition_cache_hits}/"
          f"{dfa_again.stats.transition_cache_lookups} transitions from "
          f"the warm table.")
    print()

    # Substream delivery: route the matched *content*, not just the verdict.
    # The broker's on_payload callback fires per match as the matched
    # subtree closes, with that subtree re-serialized to XML bytes — here
    # each subscriber's mailbox collects its payload fragments.  Overlapping
    # matches (a journal and the titles inside it) share one capture buffer
    # in the engine; only the final per-subscriber bytes differ.
    print("Substream delivery (same feed, payload bytes routed per")
    print("subscription as matched subtrees close):")
    mailboxes = {subscriber: [] for subscriber in SUBSCRIPTIONS}
    router = DocumentBroker(
        index,
        on_payload=lambda key, node_id, data: mailboxes[key].append(data))
    for name, document in DOCUMENTS.items():
        xml_text = to_xml(document, indent=0)
        chunks = [xml_text[start:start + CHUNK_SIZE]
                  for start in range(0, len(xml_text), CHUNK_SIZE)]
        router.submit(name, chunks)
    for subscriber, fragments in mailboxes.items():
        preview = b"".join(fragments)[:48]
        print(f"  {subscriber:15s} {len(fragments):3d} subtrees, "
              f"{sum(len(f) for f in fragments):5d} bytes  "
              f"{preview!r}{'...' if fragments else ''}")
    print(f"Served {router.stats.subtrees_emitted} subtrees / "
          f"{router.stats.bytes_emitted} payload bytes across "
          f"{router.stats.documents} documents.")
    print()

    # Live subscription churn: a real router gains and loses subscribers
    # while the feed is flowing.  subscribe()/unsubscribe() change the
    # running broker between submits without recompiling the index: an add
    # merges new NFA fragments into the shared automaton and invalidates
    # only the touched transitions (a *targeted* flush), a remove retires
    # the subscription's slot in place — the session is synced, never
    # rebuilt, and the warm DFA table survives.  index.churn counts what
    # each operation actually cost.
    print("Live churn on the running broker (no recompilation, session")
    print("synced in place, warm DFA transitions kept):")
    feed = DocumentBroker(index, matches_only=True)
    xml_text = to_xml(DOCUMENTS["catalogue-with-prices"], indent=0)
    before = feed.submit("before-churn", xml_text)
    session = feed.session
    feed.subscribe("gold-digest", '//journal[@tier="gold"]/title')
    feed.unsubscribe("pricing-mirror")
    after = feed.submit("after-churn", xml_text)
    churn = index.churn
    print(f"  before: {', '.join(before.matching_keys)}")
    print(f"  after:  {', '.join(after.matching_keys)}")
    print(f"  churn cost: {churn.subscriptions_added} added / "
          f"{churn.subscriptions_removed} removed with "
          f"{churn.targeted_flushes} targeted flushes, "
          f"{churn.full_flushes} full flushes, "
          f"{churn.vacuum_runs} vacuums; session reused: "
          f"{feed.session is session}.")


if __name__ == "__main__":
    main()
