#!/usr/bin/env python3
"""Progressive processing of a large document: streaming vs. DOM memory.

The paper's introduction argues that data-centric documents are often too
large for an in-memory (DOM) representation and that reverse-axis-free paths
enable SAX-like progressive processing.  This example scales the journal
catalogue up, evaluates the flagship query ``//price/preceding::name`` three
ways, and prints the memory footprint of each:

* DOM baseline — materialize the tree, evaluate the original query,
* pruned buffer — keep a structural copy only (option 1 of Section 1),
* streaming — rewrite with RuleSet2 and answer in a single pass.

Run with::

    python examples/streaming_large_document.py [journals]
"""

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import (  # noqa: E402
    buffered_evaluate,
    document_events,
    dom_evaluate,
    journal_document,
    remove_reverse_axes,
    stream_evaluate,
    to_string,
)

QUERY = "/descendant::price/preceding::name"


def main() -> None:
    journals = int(sys.argv[1]) if len(sys.argv) > 1 else 500
    document = journal_document(journals=journals, articles_per_journal=6,
                                authors_per_article=3)
    events = list(document_events(document))
    forward = remove_reverse_axes(QUERY, ruleset="ruleset2")

    print(f"Document: {journals} journals, {len(document)} nodes, "
          f"{len(events)} SAX events")
    print(f"Query   : {QUERY}")
    print(f"Rewritten (RuleSet2): {to_string(forward)}")
    print()

    rows = []
    started = time.perf_counter()
    dom = dom_evaluate(QUERY, events)
    rows.append(("DOM baseline", dom, time.perf_counter() - started))

    started = time.perf_counter()
    buffered = buffered_evaluate(QUERY, events)
    rows.append(("pruned buffer", buffered, time.perf_counter() - started))

    started = time.perf_counter()
    streamed = stream_evaluate(forward, events)
    rows.append(("streaming (rewritten)", streamed, time.perf_counter() - started))

    assert dom.node_ids == buffered.node_ids == streamed.node_ids

    print(f"{'evaluator':24s} {'results':>8s} {'nodes stored':>13s} "
          f"{'memory units':>13s} {'seconds':>9s}")
    for label, result, elapsed in rows:
        print(f"{label:24s} {len(result.node_ids):8d} "
              f"{result.stats.nodes_stored:13d} {result.stats.memory_units:13d} "
              f"{elapsed:9.3f}")
    print()
    ratio = dom.stats.memory_units / max(1, streamed.stats.memory_units)
    print(f"The streaming evaluator holds {ratio:.1f}x fewer items in memory "
          f"than the DOM baseline on this document.")


if __name__ == "__main__":
    main()
