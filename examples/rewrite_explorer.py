#!/usr/bin/env python3
"""Rewrite explorer: show the rare trace for any XPath expression.

A small command-line companion for studying the rewriting itself: give it a
location path (abbreviated or unabbreviated XPath) and it prints, for both
rule sets, the step-by-step trace in the style of Figures 3 and 4, the size
and join metrics, and — optionally — the simplified form.

Run with, for example::

    python examples/rewrite_explorer.py "//price/preceding::name"
    python examples/rewrite_explorer.py "/descendant::a/following::b/parent::c"
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import parse_xpath, rare, simplify, to_string  # noqa: E402
from repro.xpath import analysis  # noqa: E402

DEFAULT_QUERY = "/descendant::name/preceding::title[ancestor::journal]"


def explore(expression: str) -> None:
    path = parse_xpath(expression)
    print(f"input: {to_string(path)}")
    print(f"  length={analysis.path_length(path)} "
          f"reverse steps={analysis.count_reverse_steps(path)} "
          f"joins={analysis.count_joins(path)}")
    print()
    for ruleset in ("ruleset1", "ruleset2"):
        result = rare(path, ruleset=ruleset, collect_trace=True)
        print(result.trace.describe())
        print(f"  output length={analysis.path_length(result.result)} "
              f"joins={analysis.count_joins(result.result)} "
              f"union terms={analysis.union_term_count(result.result)} "
              f"rule applications={result.applications}")
        simplified = simplify(result.result)
        if simplified != result.result:
            print(f"  simplified: {to_string(simplified)}")
        print()


def main() -> None:
    expression = sys.argv[1] if len(sys.argv) > 1 else DEFAULT_QUERY
    explore(expression)


if __name__ == "__main__":
    main()
