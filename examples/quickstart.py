#!/usr/bin/env python3
"""Quickstart: remove reverse axes from an XPath query and evaluate it.

This walks through the core workflow of the paper on the document of
Figure 1:

1. parse a location path containing reverse axes,
2. rewrite it into an equivalent reverse-axis-free path with ``rare``
   (both rule sets, with the Figure 3/4 traces),
3. evaluate original and rewritings on the in-memory document,
4. evaluate the rewritten path in a single pass over the SAX event stream.

Run with::

    python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import (  # noqa: E402  (path bootstrap above)
    document_events,
    evaluate,
    figure1_document,
    parse_xpath,
    rare,
    stream_evaluate,
    to_string,
)

QUERY = "/descendant::price/preceding::name"


def main() -> None:
    document = figure1_document()
    path = parse_xpath(QUERY)

    print("Figure 1 document: the journal with title, editor, authors and price.")
    print(f"Query (Example 3.1): {QUERY}")
    print("  -> nodes selected by the original query:",
          [node.label() for node in evaluate(path, document)])
    print()

    for ruleset in ("ruleset1", "ruleset2"):
        result = rare(path, ruleset=ruleset, collect_trace=True)
        print(f"{result.ruleset} rewriting ({result.applications} rule applications):")
        print(f"  {to_string(result.result)}")
        print("  rules applied:", ", ".join(result.trace.rules_applied()))
        selected = evaluate(result.result, document)
        print("  -> nodes selected by the rewriting:",
              [node.label() for node in selected])
        print()

    forward = rare(path, ruleset="ruleset2").result
    streamed = stream_evaluate(forward, document_events(document))
    print("Single-pass streaming evaluation of the RuleSet2 rewriting:")
    print("  selected node ids:", streamed.node_ids)
    print("  events processed :", streamed.stats.events)
    print("  document nodes materialized in memory:", streamed.stats.nodes_stored)


if __name__ == "__main__":
    main()
